"""Repo-aware lint context.

The DOC001 rule cross-checks paper references found in docstrings
(``Figure 12``, ``§4.1``, ``Section 4.2``) against the figures and
sections actually catalogued in ``docs/paper_mapping.md``. This module
discovers the repo root, parses the mapping file once, and exposes the
resulting reference sets to every worker process.

It also centralises the reference-extraction regexes so the rule and the
mapping parser can never drift apart.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterator, Optional, Tuple

__all__ = ["PaperRef", "RepoContext", "extract_obs_names", "extract_refs"]

# "Figure 12", "Fig. 5", "Figures 7-11" (ASCII hyphen, en- or em-dash).
_FIGURE = re.compile(
    r"\bFig(?:ure)?s?\.?\s*(?P<lo>\d+)(?:\s*[-–—]\s*(?P<hi>\d+))?"
)
# "§4.1", "§ 2", "Section 4.2", "Sections 4.1-4.3" (range kept as endpoints).
_SECTION = re.compile(
    r"(?:§\s*|\bSections?\s+)(?P<num>\d+(?:\.\d+)*)"
)

# Files whose presence marks the repository root.
_ROOT_MARKERS = ("pyproject.toml", ".git")
_MAPPING_RELPATH = Path("docs") / "paper_mapping.md"
_OBS_DOC_RELPATH = Path("docs") / "observability.md"

# OBS002's catalogue: every backtick-quoted token in observability.md
# that looks like an instrument name (dotted lowercase path or a bare
# snake_case event type). Deliberately permissive — over-collecting
# produces false negatives for the linter, never false positives.
_BACKTICK = re.compile(r"`([^`\n]+)`")
_OBS_NAME = re.compile(r"^\.?[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)*$")

# DET001 exempts the one module that is *supposed* to construct
# generators: the seeded-stream registry.
RNG_MODULE_SUFFIX = ("repro", "simulation", "rng.py")


@dataclass(frozen=True)
class PaperRef:
    """One paper reference found in free text."""

    kind: str  # "figure" | "section"
    value: str  # "12" or "4.1"
    line_offset: int  # 0-based line index within the scanned text


def extract_refs(text: str) -> Iterator[PaperRef]:
    """Yield every figure/section reference in ``text``, ranges expanded."""
    for offset, line in enumerate(text.splitlines()):
        for match in _FIGURE.finditer(line):
            lo = int(match.group("lo"))
            hi = int(match.group("hi") or lo)
            if hi < lo or hi - lo > 100:  # malformed or absurd range
                hi = lo
            for number in range(lo, hi + 1):
                yield PaperRef("figure", str(number), offset)
        for match in _SECTION.finditer(line):
            yield PaperRef("section", match.group("num"), offset)


def extract_obs_names(text: str) -> FrozenSet[str]:
    """Instrument names catalogued in observability.md prose/tables.

    Tables abbreviate sibling metrics as ``exbox.decisions.admitted`` /
    ``.rejected``; a leading-dot token is expanded against the most
    recent full dotted name by replacing its trailing components.
    """
    names = set()
    last_full: Optional[str] = None
    for match in _BACKTICK.finditer(text):
        token = match.group(1).strip()
        if not _OBS_NAME.match(token):
            continue
        if token.startswith("."):
            if last_full is None:
                continue
            suffix = token[1:].split(".")
            base = last_full.split(".")
            if len(base) <= len(suffix):
                continue
            names.add(".".join(base[: -len(suffix)] + suffix))
        else:
            names.add(token)
            if "." in token:
                last_full = token
    return frozenset(names)


def _section_matches(ref: str, known: FrozenSet[str]) -> bool:
    """Prefix matching on dot boundaries: §4 covers §4.1 and vice versa."""
    if ref in known:
        return True
    for section in known:
        if section.startswith(ref + ".") or ref.startswith(section + "."):
            return True
    return False


@dataclass(frozen=True)
class RepoContext:
    """Everything a worker process needs beyond the file it is linting."""

    root: Optional[str] = None
    mapping_path: Optional[str] = None
    figures: FrozenSet[str] = field(default_factory=frozenset)
    sections: FrozenSet[str] = field(default_factory=frozenset)
    obs_doc_path: Optional[str] = None
    obs_names: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def has_mapping(self) -> bool:
        return self.mapping_path is not None

    @property
    def has_obs_catalogue(self) -> bool:
        return self.obs_doc_path is not None

    def knows_figure(self, number: str) -> bool:
        return number in self.figures

    def knows_section(self, number: str) -> bool:
        return _section_matches(number, self.sections)

    def knows_obs_name(self, name: str) -> bool:
        return name in self.obs_names

    @classmethod
    def discover(cls, start: Path) -> "RepoContext":
        """Walk up from ``start`` to the repo root and parse the mapping."""
        here = start.resolve()
        if here.is_file():
            here = here.parent
        for candidate in (here, *here.parents):
            if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
                return cls.from_root(candidate)
        return cls()

    @classmethod
    def from_root(cls, root: Path) -> "RepoContext":
        mapping = root / _MAPPING_RELPATH
        obs_doc = root / _OBS_DOC_RELPATH
        obs_doc_path: Optional[str] = None
        obs_names: FrozenSet[str] = frozenset()
        if obs_doc.is_file():
            obs_doc_path = str(obs_doc)
            obs_names = extract_obs_names(obs_doc.read_text(encoding="utf-8"))
        if not mapping.is_file():
            return cls(
                root=str(root), obs_doc_path=obs_doc_path, obs_names=obs_names
            )
        figures, sections = _parse_mapping(mapping.read_text(encoding="utf-8"))
        return cls(
            root=str(root),
            mapping_path=str(mapping),
            figures=figures,
            sections=sections,
            obs_doc_path=obs_doc_path,
            obs_names=obs_names,
        )


def _parse_mapping(text: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    figures = set()
    sections = set()
    for ref in extract_refs(text):
        if ref.kind == "figure":
            figures.add(ref.value)
        else:
            sections.add(ref.value)
    return frozenset(figures), frozenset(sections)
