"""Rule framework: one :class:`Rule` subclass per check.

A rule participates in a single shared AST walk per module. The engine
discovers handler methods by name — ``visit_Call``, ``visit_Compare``,
``visit_comprehension``, … — and dispatches each node to every rule that
declares a handler for its type, so adding a rule never adds another
tree traversal. Rules may also implement ``begin_module`` (pre-walk
setup, e.g. import-alias tracking) and ``finish_module`` (whole-module
checks such as ``__all__`` consistency).

Rules are instantiated fresh for every module, so per-module state kept
on ``self`` cannot leak between files or between parallel workers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["Rule", "REGISTRY", "register", "create_rules", "iter_rule_classes"]

_HANDLER_PREFIX = "visit_"

REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    REGISTRY[cls.rule_id] = cls
    return cls


class Rule:
    """Base class for all checks. Subclass, set metadata, add handlers."""

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def should_check(self, module: "ModuleInfo") -> bool:
        """Whether this rule applies to ``module`` at all."""
        return True

    def begin_module(self, module: "ModuleInfo") -> None:
        """Pre-walk hook; collect imports/aliases here."""

    def finish_module(self, module: "ModuleInfo") -> Iterator[Finding]:
        """Post-walk hook for whole-module checks."""
        return iter(())

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def finding(
        self, module: "ModuleInfo", node: ast.AST, message: str
    ) -> Finding:
        return self.finding_at(
            module,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def finding_at(
        self, module: "ModuleInfo", line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )

    def handlers(self) -> Dict[str, Callable]:
        """Node-type name -> bound handler, discovered by prefix."""
        table: Dict[str, Callable] = {}
        for name in dir(self):
            if name.startswith(_HANDLER_PREFIX):
                table[name[len(_HANDLER_PREFIX):]] = getattr(self, name)
        return table


def iter_rule_classes() -> List[Type[Rule]]:
    """All registered rule classes, in rule-id order."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def create_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the registered rules, honouring select/ignore filters."""
    selected = {s.upper() for s in select} if select else None
    ignored = {s.upper() for s in ignore} if ignore else set()
    unknown = (selected or set()) | ignored
    unknown -= set(REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    rules: List[Rule] = []
    for cls in iter_rule_classes():
        if selected is not None and cls.rule_id not in selected:
            continue
        if cls.rule_id in ignored:
            continue
        rules.append(cls())
    return rules
