"""Rule registry. Importing this package registers the shipped rule pack.

Future PRs add a rule by dropping a module here, decorating the class
with :func:`repro.lint.rules.base.register`, and importing it below.
"""

from repro.lint.rules.base import REGISTRY, Rule, create_rules, iter_rule_classes, register

# Importing for the @register side effect wires each pack into REGISTRY.
from repro.lint.rules import api as _api  # noqa: F401
from repro.lint.rules import determinism as _determinism  # noqa: F401
from repro.lint.rules import docs as _docs  # noqa: F401
from repro.lint.rules import numeric as _numeric  # noqa: F401
from repro.lint.rules import obs as _obs  # noqa: F401

__all__ = ["REGISTRY", "Rule", "register", "create_rules", "iter_rule_classes"]
