"""Numeric-safety rules: NUM001 (float equality), NUM002 (swallowed errors).

The QoE Estimator's IQX fits and the Admittance Classifier's SMO solver
are floating-point pipelines; exact `==` against float expressions and
silently-swallowed exceptions in those kernels both turn tiny numeric
drift into silently wrong experiment tables instead of loud failures.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["FloatEquality", "SwallowedNumericError"]

_FLOAT_CALLS = {"float"}
_FLOAT_ATTR_CALLS = {"float16", "float32", "float64", "longdouble"}


def _is_float_expr(node: ast.expr) -> bool:
    """Syntactic 'this is floating-point' evidence.

    Deliberately conservative: a float literal anywhere in the operand, a
    true division, or an explicit float()/np.float64() conversion. Pure
    integer or object comparisons never match, so `status == 2` and
    `labels == y` stay legal.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    if isinstance(node, ast.IfExp):
        return _is_float_expr(node.body) or _is_float_expr(node.orelse)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _FLOAT_CALLS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _FLOAT_ATTR_CALLS:
            return True
    return False


@register
class FloatEquality(Rule):
    rule_id = "NUM001"
    summary = "exact equality comparison on a float expression"
    rationale = (
        "`==`/`!=` on floating-point values is sensitive to rounding of "
        "the last bit, so a refactor that merely reorders arithmetic can "
        "flip experiment outcomes. Compare with `np.isclose`/"
        "`math.isclose` or an explicit tolerance. Exact sentinel "
        "comparisons that are genuinely bit-safe (e.g. against a stored "
        "constant never produced by arithmetic) may be suppressed."
    )

    def visit_Compare(
        self, node: ast.Compare, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_expr(left) or _is_float_expr(right):
                yield self.finding(
                    module,
                    node,
                    "float equality comparison; use np.isclose/math.isclose "
                    "or an explicit tolerance",
                )
                break  # one finding per comparison chain is enough


# Path segments marking the numeric kernels this rule patrols.
_KERNEL_DIRS = {"ml", "wireless", "qoe"}


@register
class SwallowedNumericError(Rule):
    rule_id = "NUM002"
    summary = "blanket except swallowing errors in a numeric kernel"
    rationale = (
        "In `ml/`, `wireless/`, and `qoe/`, a bare `except:` or "
        "`except Exception:` that does not re-raise converts numeric bugs "
        "(NaNs, shape errors) into silently wrong results. Catch the "
        "specific exception you expect, or re-raise."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        parts = set(module.path_parts())
        return "repro" in parts and bool(parts & _KERNEL_DIRS)

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        if not self._is_blanket(node.type):
            return
        # A handler that re-raises (bare `raise` or raise-from) is a
        # legitimate cleanup/translation site, not a swallow.
        if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
            return
        what = "bare `except:`" if node.type is None else "`except Exception`"
        yield self.finding(
            module,
            node,
            f"{what} swallows errors in a numeric kernel; catch the "
            "specific exception or re-raise",
        )

    @staticmethod
    def _is_blanket(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in {"Exception", "BaseException"}
        if isinstance(type_node, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in {"Exception", "BaseException"}
                for el in type_node.elts
            )
        return False
