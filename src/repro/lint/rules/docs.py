"""DOC001: docstring paper references must exist in docs/paper_mapping.md.

The mapping file is the contract between this codebase and the ExBox
paper: every figure and section a docstring claims to implement must be
catalogued there, otherwise the claim is unverifiable (a typo'd figure
number survives forever). The rule is repo-aware — it reads the figure
and section inventory from the discovered mapping file, and stays silent
in repos that have no mapping at all.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.context import extract_refs
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["UnmappedPaperReference"]

_DOCSTRING_OWNERS = (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)


@register
class UnmappedPaperReference(Rule):
    rule_id = "DOC001"
    summary = "docstring cites a figure/section absent from paper_mapping.md"
    rationale = (
        "docs/paper_mapping.md is the ledger tying code to the paper; a "
        "docstring citing a figure or section the ledger does not know "
        "cannot be cross-checked against the reproduction targets. Add "
        "the figure/section to the mapping (with its implementing module) "
        "or correct the reference."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        return bool(module.context.has_mapping)

    def finish_module(self, module: "ModuleInfo") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _DOCSTRING_OWNERS):
                continue
            doc = ast.get_docstring(node, clean=False)
            if not doc:
                continue
            # The docstring is the first statement; its constant starts on
            # doc_expr.lineno, so line offsets within the text are additive.
            doc_expr = node.body[0]
            base_line = getattr(doc_expr, "lineno", 1)
            for ref in extract_refs(doc):
                if ref.kind == "figure":
                    if module.context.knows_figure(ref.value):
                        continue
                    label = f"Figure {ref.value}"
                else:
                    if module.context.knows_section(ref.value):
                        continue
                    label = f"§{ref.value}"
                yield self.finding_at(
                    module,
                    base_line + ref.line_offset,
                    0,
                    f"docstring cites {label}, which is not catalogued in "
                    "docs/paper_mapping.md",
                )
