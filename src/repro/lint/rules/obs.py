"""Observability rule: OBS001 (no bare ``print()`` in library code).

Library modules under ``src/repro/`` must report through the
:mod:`repro.obs` facade (metrics, events, spans) or return renderable
results; a stray ``print()`` bypasses both, cannot be captured by the
exporters, and pollutes stdout for callers that parse it (the CLI, the
benchmark JSON export). The CLI front-ends and the plain-text plotting
helper are the sanctioned stdout writers and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

__all__ = ["BarePrintInLibrary"]

# Modules whose whole point is writing to stdout.
_EXEMPT_FILES = ("cli.py", "textplot.py")
_LIBRARY_PREFIX: Tuple[str, ...] = ("src", "repro")


@register
class BarePrintInLibrary(Rule):
    rule_id = "OBS001"
    summary = "bare print() in library code"
    rationale = (
        "Library code under src/repro/ must report through the repro.obs "
        "facade (counters, events, spans) or return data for the caller "
        "to render; print() is invisible to the exporters and corrupts "
        "stdout for machine consumers. CLI modules and the text plotter "
        "are the sanctioned stdout writers."
    )

    def should_check(self, module) -> bool:
        parts = module.path_parts()
        # Only library code: a src/repro/ prefix somewhere in the path
        # (the engine may be run from the repo root or from src/).
        for i in range(len(parts) - 1):
            if parts[i : i + 2] == _LIBRARY_PREFIX:
                rel = parts[i + 2 :]
                break
        else:
            if parts[:1] == ("repro",):
                rel = parts[1:]
            else:
                return False
        if not rel:
            return False
        if rel[0] == "lint":  # the linter prints its own findings
            return False
        return module.filename not in _EXEMPT_FILES

    def visit_Call(self, node: ast.Call, module) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield self.finding(
                module,
                node,
                "bare print() in library code; emit a repro.obs event/metric "
                "or return the text to the caller (CLI modules are exempt)",
            )
