"""Observability rules: OBS001 (no bare ``print()`` in library code)
and OBS002 (instrument names must be catalogued).

OBS001: library modules under ``src/repro/`` must report through the
:mod:`repro.obs` facade (metrics, events, spans) or return renderable
results; a stray ``print()`` bypasses both, cannot be captured by the
exporters, and pollutes stdout for callers that parse it (the CLI, the
benchmark JSON export). The CLI front-ends and the plain-text plotting
helper are the sanctioned stdout writers and are exempt.

OBS002: every metric, span, or event name the pipeline registers with a
string literal — ``obs.counter("...")``, ``.gauge``, ``.histogram``,
``.span``, ``obs.emit("...")`` — must appear in the catalogue tables of
``docs/observability.md``. The catalogue is how operators discover what
an alert rule or dashboard can reference; an undocumented name is
invisible to them and prone to silent drift.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["BarePrintInLibrary", "UncataloguedObsName"]

# Modules whose whole point is writing to stdout.
_EXEMPT_FILES = ("cli.py", "textplot.py")
_LIBRARY_PREFIX: Tuple[str, ...] = ("src", "repro")


def _library_relparts(module: "ModuleInfo") -> Optional[Tuple[str, ...]]:
    """Path components below ``src/repro/``, or None outside the library.

    The engine may be invoked from the repo root or from ``src/``, so the
    prefix is searched anywhere in the path rather than anchored.
    """
    parts = module.path_parts()
    for i in range(len(parts) - 1):
        if parts[i : i + 2] == _LIBRARY_PREFIX:
            rel = parts[i + 2 :]
            break
    else:
        if parts[:1] == ("repro",):
            rel = parts[1:]
        else:
            return None
    return rel or None


@register
class BarePrintInLibrary(Rule):
    rule_id = "OBS001"
    summary = "bare print() in library code"
    rationale = (
        "Library code under src/repro/ must report through the repro.obs "
        "facade (counters, events, spans) or return data for the caller "
        "to render; print() is invisible to the exporters and corrupts "
        "stdout for machine consumers. CLI modules and the text plotter "
        "are the sanctioned stdout writers."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        rel = _library_relparts(module)
        if rel is None:
            return False
        if rel[0] == "lint":  # the linter prints its own findings
            return False
        return module.filename not in _EXEMPT_FILES

    def visit_Call(self, node: ast.Call, module: "ModuleInfo") -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield self.finding(
                module,
                node,
                "bare print() in library code; emit a repro.obs event/metric "
                "or return the text to the caller (CLI modules are exempt)",
            )


# Facade/registry methods whose first argument names an instrument.
_OBS_NAMING_METHODS = frozenset({"counter", "gauge", "histogram", "span", "emit"})


@register
class UncataloguedObsName(Rule):
    rule_id = "OBS002"
    summary = "instrument name missing from docs/observability.md"
    rationale = (
        "docs/observability.md is the operator-facing catalogue of every "
        "metric, span, and event the pipeline can produce; alert rules "
        "and dashboards are written against it. A name registered in "
        "code but absent from the catalogue is undiscoverable and drifts "
        "silently. Add the name to the relevant catalogue table (or fix "
        "the literal)."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        # Repo-aware like DOC001: silent when the catalogue is absent.
        return bool(
            module.context.has_obs_catalogue
            and _library_relparts(module) is not None
        )

    def visit_Call(self, node: ast.Call, module: "ModuleInfo") -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _OBS_NAMING_METHODS:
            return
        if not node.args:
            return
        first = node.args[0]
        # Only plain literals are checkable; f-strings and variables
        # (e.g. span-name constants) are out of scope by design.
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            return
        if module.context.knows_obs_name(first.value):
            return
        yield self.finding(
            module,
            first,
            f"obs name {first.value!r} is not catalogued in "
            "docs/observability.md; document it in the metric/span/event "
            "tables",
        )
