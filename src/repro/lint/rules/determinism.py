"""Determinism rules: DET001 (unseeded randomness), DET002 (set iteration).

Every stochastic draw in this reproduction must flow through a
:class:`repro.simulation.rng.RngRegistry` stream or an explicitly seeded
``np.random.default_rng(seed)``, and no numeric result may depend on the
iteration order of an unordered container. These are the two properties
that make ExCR learning and IQX fits bit-repeatable under a seed.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.lint.context import RNG_MODULE_SUFFIX
from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["UnseededRandomness", "SetIteration", "dotted_name"]

# numpy.random attributes that are fine to touch: types, seeding
# constructors (argument presence is checked separately for default_rng).
_NP_RANDOM_OK = {"Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64", "default_rng"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRandomness(Rule):
    rule_id = "DET001"
    summary = "unseeded or global-state randomness"
    rationale = (
        "Draws from the stdlib `random` module, legacy `np.random.*` "
        "global-state functions, or an argument-less `default_rng()` are "
        "not tied to the experiment seed, so results cannot be reproduced. "
        "Use `repro.simulation.rng.seeded_rng`/`RngRegistry` or pass an "
        "explicit seed."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        # The seeded-stream registry is the one sanctioned constructor site.
        return module.path_parts()[-3:] != RNG_MODULE_SUFFIX

    def begin_module(self, module: "ModuleInfo") -> None:
        # Aliases for the stdlib random module, numpy, numpy.random, and
        # names from-imported out of them.
        self._random_mods: Set[str] = set()
        self._numpy_mods: Set[str] = set()
        self._np_random_mods: Set[str] = set()
        self._from_random: Dict[str, str] = {}  # local name -> origin fn
        self._from_np_random: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self._random_mods.add(local)
                    elif alias.name == "numpy":
                        self._numpy_mods.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self._np_random_mods.add(alias.asname)
                        else:
                            self._numpy_mods.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        self._from_random[alias.asname or alias.name] = alias.name
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self._from_np_random[alias.asname or alias.name] = alias.name
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self._np_random_mods.add(alias.asname or "random")

    def visit_Call(self, node: ast.Call, module: "ModuleInfo") -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return iter(())
        findings: List[Finding] = []
        head, _, rest = name.partition(".")

        # stdlib random: any call through the module object or a
        # from-imported function (random.Random(seed) included — audit and
        # suppress deliberately if a non-numeric shuffle really needs it).
        if head in self._random_mods and rest:
            findings.append(
                self.finding(
                    module,
                    node,
                    f"call to stdlib `{name}` bypasses the experiment seed; "
                    "use a seeded numpy Generator from repro.simulation.rng",
                )
            )
        elif not rest and head in self._from_random:
            origin = self._from_random[head]
            findings.append(
                self.finding(
                    module,
                    node,
                    f"call to stdlib `random.{origin}` bypasses the experiment "
                    "seed; use a seeded numpy Generator from repro.simulation.rng",
                )
            )

        # numpy.random global state / unseeded default_rng.
        np_attr = self._numpy_random_attr(name)
        if np_attr is not None:
            if np_attr == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "`default_rng()` without a seed draws from OS "
                            "entropy; pass the experiment seed (or use "
                            "repro.simulation.rng.seeded_rng)",
                        )
                    )
            elif np_attr not in _NP_RANDOM_OK:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"legacy `numpy.random.{np_attr}` uses hidden global "
                        "state; use a seeded Generator instead",
                    )
                )

        if not rest and head in self._from_np_random:
            origin = self._from_np_random[head]
            if origin == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "`default_rng()` without a seed draws from OS "
                            "entropy; pass the experiment seed (or use "
                            "repro.simulation.rng.seeded_rng)",
                        )
                    )
            elif origin not in _NP_RANDOM_OK:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"legacy `numpy.random.{origin}` uses hidden global "
                        "state; use a seeded Generator instead",
                    )
                )
        return iter(findings)

    def _numpy_random_attr(self, name: str) -> Optional[str]:
        """For `np.random.<fn>` / `npr.<fn>` calls, the `<fn>` part."""
        parts = name.split(".")
        if len(parts) >= 3 and parts[0] in self._numpy_mods and parts[1] == "random":
            return parts[2]
        if len(parts) >= 2 and parts[0] in self._np_random_mods:
            return parts[1]
        return None

# Calls through which iteration order is preserved from the first argument.
_ORDER_PRESERVING = {"enumerate", "list", "tuple", "iter", "reversed"}
# Calls that impose a deterministic order on any iterable.
_ORDER_FIXING = {"sorted"}
_SET_CONSTRUCTORS = {"set", "frozenset"}


@register
class SetIteration(Rule):
    rule_id = "DET002"
    summary = "iteration over an unordered set expression"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation of the interpreter process; when the loop feeds "
        "numeric accumulation or output ordering, runs stop being "
        "repeatable. Wrap the set in `sorted(...)`."
    )

    def visit_For(self, node: ast.For, module: "ModuleInfo") -> Iterator[Finding]:
        return self._check_iterable(node.iter, module)

    def visit_AsyncFor(
        self, node: ast.AsyncFor, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        return self._check_iterable(node.iter, module)

    def visit_comprehension(
        self, node: ast.comprehension, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        return self._check_iterable(node.iter, module)

    def _check_iterable(
        self, expr: ast.expr, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        culprit = self._unordered_set_expr(expr)
        if culprit is not None:
            yield self.finding(
                module,
                expr,
                "iterating over an unordered set; wrap in `sorted(...)` so "
                "downstream numeric results do not depend on hash order",
            )

    def _unordered_set_expr(self, expr: ast.expr) -> Optional[ast.expr]:
        """The offending set expression, seen through order-preserving wrappers."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            name = expr.func.id
            if name in _ORDER_FIXING:
                return None
            if name in _SET_CONSTRUCTORS:
                return expr
            if name in _ORDER_PRESERVING and expr.args:
                return self._unordered_set_expr(expr.args[0])
        return None
