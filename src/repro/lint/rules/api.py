"""API-contract rules: API001 (`__all__` hygiene), API002 (mutable defaults).

The reproduction's public surface is what downstream PRs (sharding,
async hot paths, multi-backend) will refactor against; `__all__` is the
machine-checkable statement of that surface, and mutable default
arguments are the classic way shared state sneaks into an API that
looks pure.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Union

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import ModuleInfo

__all__ = ["DunderAllConsistency", "MutableDefaultArgument"]

# pytest collects these by filename; they are not import API.
_NON_API_FILES = ("conftest.py", "setup.py")


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module body, looking through top-level `if`/`try` (conditional
    imports, TYPE_CHECKING blocks) one level deep."""
    for stmt in tree.body:
        yield stmt
        if isinstance(stmt, ast.If):
            for sub in [*stmt.body, *stmt.orelse]:
                yield sub
        elif isinstance(stmt, ast.Try):
            for sub in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                yield sub
            for handler in stmt.handlers:
                for sub in handler.body:
                    yield sub


@register
class DunderAllConsistency(Rule):
    rule_id = "API001"
    summary = "missing or inconsistent __all__ in a public module"
    rationale = (
        "`__all__` is the declared public surface later PRs refactor "
        "against. A public def/class missing from it is an accidental "
        "export; a name listed but never defined is an API lie that "
        "breaks `from module import *` and documentation tooling."
    )

    def should_check(self, module: "ModuleInfo") -> bool:
        if not module.in_package:
            return False  # scripts (examples/) have no import surface
        name = module.filename
        if name in _NON_API_FILES or name.startswith("test_"):
            return False
        return True

    def finish_module(self, module: "ModuleInfo") -> Iterator[Finding]:
        tree = module.tree
        dunder_all: Optional[ast.Assign] = None
        listed: Optional[List[str]] = None
        defined: Set[str] = set()
        public_defs = []  # (name, node)

        for stmt in _top_level_statements(tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs.append((stmt.name, stmt))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                        if target.id == "__all__":
                            dunder_all = stmt
                            listed = _string_elements(stmt.value)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for el in target.elts:
                            if isinstance(el, ast.Name):
                                defined.add(el.id)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    defined.add(stmt.target.id)
            elif isinstance(stmt, ast.AugAssign):
                # `__all__ += [...]` — treat as dynamic, skip consistency.
                if isinstance(stmt.target, ast.Name) and stmt.target.id == "__all__":
                    return
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    defined.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        return  # re-export module; cannot check statically
                    defined.add(alias.asname or alias.name)

        if dunder_all is None:
            if public_defs:
                names = ", ".join(sorted(n for n, _ in public_defs)[:5])
                yield self.finding_at(
                    module,
                    1,
                    0,
                    f"public module defines {len(public_defs)} public "
                    f"name(s) ({names}{'…' if len(public_defs) > 5 else ''}) "
                    "but no __all__",
                )
            return
        if listed is None:
            return  # dynamically built __all__; out of scope

        listed_set = set(listed)
        for name in listed:
            if name not in defined:
                yield self.finding(
                    module,
                    dunder_all,
                    f"__all__ lists `{name}` which is not defined in the module",
                )
        for name, node in public_defs:
            if name not in listed_set:
                yield self.finding(
                    module,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"`{name}` is not listed in __all__ (export it or rename "
                    "with a leading underscore)",
                )


def _string_elements(value: ast.expr) -> Optional[List[str]]:
    """Elements of a literal list/tuple of strings, else None."""
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for el in value.elts:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            out.append(el.value)
        else:
            return None
    return out


_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
}


@register
class MutableDefaultArgument(Rule):
    rule_id = "API002"
    summary = "mutable default argument"
    rationale = (
        "Default values are evaluated once at definition time, so a "
        "mutable default is shared across every call — state leaks "
        "between invocations (and, here, between simulated experiments). "
        "Default to None and construct inside the function."
    )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        return self._check(node, module)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, module: "ModuleInfo"
    ) -> Iterator[Finding]:
        return self._check(node, module)

    def visit_Lambda(self, node: ast.Lambda, module: "ModuleInfo") -> Iterator[Finding]:
        return self._check(node, module)

    def _check(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
        module: "ModuleInfo",
    ) -> Iterator[Finding]:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and self._is_mutable(default):
                yield self.finding(
                    module,
                    default,
                    "mutable default argument is shared across calls; use "
                    "None and construct inside the function",
                )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id in _MUTABLE_CALLS
            if isinstance(func, ast.Attribute):
                return func.attr in _MUTABLE_CALLS
        return False
