"""Lint engine: file discovery, the shared AST walk, and parallel runs.

``lint_source`` is the single-module core (also the natural unit for the
self-tests); ``LintEngine`` adds directory traversal and a
``concurrent.futures`` process pool so a full-tree sweep parses files in
parallel. Findings come back fully sorted and deduplicated so output is
byte-identical regardless of worker scheduling.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.context import RepoContext
from repro.lint.findings import Finding, sort_findings
from repro.lint.rules import create_rules
from repro.lint.suppressions import SuppressionIndex

__all__ = ["ModuleInfo", "LintEngine", "lint_source", "lint_file", "iter_python_files"]

# Rule id reserved for files the parser rejects; not a registered Rule
# because there is no AST to visit (and it is deliberately insuppressible:
# a file that cannot be parsed cannot be reasoned about either).
SYNTAX_RULE_ID = "E000"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".mypy_cache", ".ruff_cache"}


@dataclass
class ModuleInfo:
    """Everything rules may want to know about the module being linted."""

    path: Optional[Path]
    relpath: str
    source: str
    tree: ast.Module
    context: RepoContext
    in_package: bool = False
    lines: List[str] = field(default_factory=list)

    @property
    def filename(self) -> str:
        return self.relpath.rsplit("/", 1)[-1]

    def path_parts(self) -> Tuple[str, ...]:
        return tuple(self.relpath.split("/"))


def lint_source(
    source: str,
    relpath: str,
    context: Optional[RepoContext] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    path: Optional[Path] = None,
    in_package: bool = False,
) -> List[Finding]:
    """Lint one module's source text; the core everything else wraps."""
    context = context if context is not None else RepoContext()
    try:
        tree = ast.parse(source, filename=relpath)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1) - 1
        return [
            Finding(
                path=relpath,
                line=line,
                col=max(col, 0),
                rule_id=SYNTAX_RULE_ID,
                message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
            )
        ]

    module = ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        context=context,
        in_package=in_package,
        lines=source.splitlines(),
    )

    rules = [r for r in create_rules(select, ignore) if r.should_check(module)]
    findings: List[Finding] = []
    handler_table = []
    for rule in rules:
        rule.begin_module(module)
        handler_table.append((rule, rule.handlers()))

    for node in ast.walk(tree):
        node_type = type(node).__name__
        for rule, handlers in handler_table:
            handler = handlers.get(node_type)
            if handler is None:
                continue
            produced = handler(node, module)
            if produced:
                findings.extend(produced)

    for rule, _ in handler_table:
        findings.extend(rule.finish_module(module))

    suppressions = SuppressionIndex(source)
    return sort_findings(suppressions.apply(f) for f in findings)


def lint_file(
    path: Path,
    context: Optional[RepoContext] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    context = context if context is not None else RepoContext.discover(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=_relpath(path, context),
                line=1,
                col=0,
                rule_id=SYNTAX_RULE_ID,
                message=f"file cannot be read: {exc}",
            )
        ]
    return lint_source(
        source,
        relpath=_relpath(path, context),
        context=context,
        select=select,
        ignore=ignore,
        path=path,
        in_package=(path.parent / "__init__.py").exists(),
    )


def _relpath(path: Path, context: RepoContext) -> str:
    path = path.resolve()
    if context.root:
        try:
            return path.relative_to(context.root).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen = set()
    ordered: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in root.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)) and "egg-info" not in str(p)
            )
        for path in candidates:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(path)
    return ordered


# Top-level so ProcessPoolExecutor can pickle it.
def _lint_file_worker(
    args: Tuple[
        Path, RepoContext, Optional[Tuple[str, ...]], Optional[Tuple[str, ...]]
    ],
) -> List[Finding]:
    path, context, select, ignore = args
    return lint_file(Path(path), context=context, select=select, ignore=ignore)


class LintEngine:
    """Full-tree runs: discovery, shared context, optional parallelism."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.select = tuple(select) if select else None
        self.ignore = tuple(ignore) if ignore else None
        self.jobs = jobs

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        files = iter_python_files(Path(p) for p in paths)
        if not files:
            return []
        context = RepoContext.discover(files[0])
        jobs = self.jobs or min(8, os.cpu_count() or 1)
        jobs = max(1, min(jobs, len(files)))
        if jobs == 1 or len(files) < 4:
            results = [
                lint_file(f, context=context, select=self.select, ignore=self.ignore)
                for f in files
            ]
        else:
            work = [(str(f), context, self.select, self.ignore) for f in files]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_lint_file_worker, work, chunksize=4))
        merged: List[Finding] = []
        for result in results:
            merged.extend(result)
        return sort_findings(merged)
