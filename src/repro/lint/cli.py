"""``python -m repro.lint`` / ``repro-lint`` command-line front end.

Exit codes: 0 — no unsuppressed findings; 1 — unsuppressed findings
exist; 2 — usage error (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.lint.engine import LintEngine
from repro.lint.reporters import render_human, render_json
from repro.lint.rules import iter_rule_classes

__all__ = ["main", "build_parser"]

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-aware static analysis for the ExBox reproduction: "
            "determinism, numeric-safety, and API-contract rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: %(default)s)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: %(default)s)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_rule_args(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out or None


def _list_rules(stream: TextIO) -> None:
    for cls in iter_rule_classes():
        stream.write(f"{cls.rule_id}  {cls.summary}\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(sys.stdout)
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    try:
        engine = LintEngine(
            select=_split_rule_args(args.select),
            ignore=_split_rule_args(args.ignore),
            jobs=args.jobs,
        )
        findings = engine.run([Path(p) for p in args.paths])
    except KeyError as exc:  # unknown rule id in --select/--ignore
        parser.error(str(exc.args[0] if exc.args else exc))

    if args.format == "json":
        sys.stdout.write(render_json(findings) + "\n")
    else:
        render_human(findings, sys.stdout, show_suppressed=args.show_suppressed)

    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
