"""The :class:`Finding` record shared by rules, reporters, and the CLI.

A finding is an immutable value object so it can be sorted, deduplicated,
hashed, and shipped across process boundaries by the parallel engine
without ceremony. ``suppressed`` is carried on the record (rather than
filtering suppressed findings out) so reporters can show what was
silenced and the CLI can compute its exit code from one list.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["Finding", "sort_findings", "unsuppressed"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = False

    @property
    def location(self) -> Tuple[str, int, int]:
        return (self.path, self.line, self.col)

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=str(payload["rule_id"]),
            message=str(payload["message"]),
            suppressed=bool(payload.get("suppressed", False)),
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: path, then line/col, then rule id."""
    return sorted(set(findings))


def unsuppressed(findings: Iterable[Finding]) -> List[Finding]:
    return [f for f in findings if not f.suppressed]
